//! `RecordBatch`: a horizontal slice of a table, stored column-wise.

use crate::column::{Column, ColumnBuilder};
use crate::error::{Error, Result};
use crate::schema::SchemaRef;
use crate::value::Value;
use std::fmt::Write as _;
use std::sync::Arc;

/// A set of equal-length columns conforming to a schema.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordBatch {
    schema: SchemaRef,
    columns: Vec<Column>,
    num_rows: usize,
}

impl RecordBatch {
    /// Build a batch, validating column count, types, and lengths against the
    /// schema.
    pub fn try_new(schema: SchemaRef, columns: Vec<Column>) -> Result<Self> {
        if schema.len() != columns.len() {
            return Err(Error::Invalid(format!(
                "schema has {} fields but {} columns were provided",
                schema.len(),
                columns.len()
            )));
        }
        let num_rows = columns.first().map_or(0, |c| c.len());
        for (i, (f, c)) in schema.fields().iter().zip(&columns).enumerate() {
            if c.data_type() != f.data_type {
                return Err(Error::Invalid(format!(
                    "column {i} ({}) has type {} but schema declares {}",
                    f.name,
                    c.data_type(),
                    f.data_type
                )));
            }
            if c.len() != num_rows {
                return Err(Error::Invalid(format!(
                    "column {i} ({}) has {} rows but expected {num_rows}",
                    f.name,
                    c.len()
                )));
            }
        }
        Ok(RecordBatch {
            schema,
            columns,
            num_rows,
        })
    }

    /// An empty batch for a schema.
    pub fn empty(schema: SchemaRef) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| ColumnBuilder::new(f.data_type).finish())
            .collect();
        RecordBatch {
            schema,
            columns,
            num_rows: 0,
        }
    }

    /// Build a batch from row-oriented values (convenient in tests and the
    /// VALUES operator).
    pub fn from_rows(schema: SchemaRef, rows: &[Vec<Value>]) -> Result<Self> {
        let mut builders: Vec<ColumnBuilder> = schema
            .fields()
            .iter()
            .map(|f| ColumnBuilder::new(f.data_type))
            .collect();
        for (r, row) in rows.iter().enumerate() {
            if row.len() != schema.len() {
                return Err(Error::Invalid(format!(
                    "row {r} has {} values but schema has {} fields",
                    row.len(),
                    schema.len()
                )));
            }
            for (b, v) in builders.iter_mut().zip(row) {
                b.push(v)?;
            }
        }
        let columns = builders.into_iter().map(|b| b.finish()).collect();
        RecordBatch::try_new(schema, columns)
    }

    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.num_rows == 0
    }

    /// One row as scalars.
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value(i)).collect()
    }

    /// All rows as scalars (test/sink helper).
    pub fn to_rows(&self) -> Vec<Vec<Value>> {
        (0..self.num_rows).map(|i| self.row(i)).collect()
    }

    /// Keep the columns at `indices`, in order.
    pub fn project(&self, indices: &[usize]) -> Result<RecordBatch> {
        for &i in indices {
            if i >= self.columns.len() {
                return Err(Error::Invalid(format!(
                    "projection index {i} out of bounds ({} columns)",
                    self.columns.len()
                )));
            }
        }
        let schema = Arc::new(self.schema.project(indices));
        let columns = indices.iter().map(|&i| self.columns[i].clone()).collect();
        RecordBatch::try_new(schema, columns)
    }

    /// Keep rows where `mask[i]` is true.
    pub fn filter(&self, mask: &[bool]) -> Result<RecordBatch> {
        let columns: Result<Vec<Column>> = self.columns.iter().map(|c| c.filter(mask)).collect();
        let columns = columns?;
        let num_rows = mask.iter().filter(|&&m| m).count();
        Ok(RecordBatch {
            schema: self.schema.clone(),
            columns,
            num_rows,
        })
    }

    /// Select rows by index, in order (indices may repeat).
    pub fn gather(&self, indices: &[usize]) -> Result<RecordBatch> {
        let columns: Result<Vec<Column>> = self.columns.iter().map(|c| c.gather(indices)).collect();
        Ok(RecordBatch {
            schema: self.schema.clone(),
            columns: columns?,
            num_rows: indices.len(),
        })
    }

    /// Rows `[offset, offset + len)`.
    pub fn slice(&self, offset: usize, len: usize) -> Result<RecordBatch> {
        let columns: Result<Vec<Column>> =
            self.columns.iter().map(|c| c.slice(offset, len)).collect();
        Ok(RecordBatch {
            schema: self.schema.clone(),
            columns: columns?,
            num_rows: len,
        })
    }

    /// Concatenate same-schema batches.
    pub fn concat(batches: &[RecordBatch]) -> Result<RecordBatch> {
        let first = batches
            .first()
            .ok_or_else(|| Error::Invalid("concat of zero batches".into()))?;
        let schema = first.schema.clone();
        let mut columns = Vec::with_capacity(schema.len());
        for i in 0..schema.len() {
            let cols: Vec<Column> = batches.iter().map(|b| b.columns[i].clone()).collect();
            columns.push(Column::concat(&cols)?);
        }
        let num_rows = batches.iter().map(|b| b.num_rows).sum();
        Ok(RecordBatch {
            schema,
            columns,
            num_rows,
        })
    }

    /// In-memory footprint estimate in bytes.
    pub fn byte_size(&self) -> usize {
        self.columns.iter().map(|c| c.byte_size()).sum()
    }

    /// Render as an ASCII table (used by Rover and the examples).
    pub fn pretty_format(&self) -> String {
        pretty_format_batches(std::slice::from_ref(self))
    }
}

/// Render several same-schema batches as one ASCII table.
pub fn pretty_format_batches(batches: &[RecordBatch]) -> String {
    let Some(first) = batches.first() else {
        return String::from("(no rows)\n");
    };
    let schema = first.schema();
    let headers: Vec<&str> = schema.fields().iter().map(|f| f.name.as_str()).collect();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    let mut rows: Vec<Vec<String>> = Vec::new();
    for b in batches {
        for i in 0..b.num_rows() {
            let row: Vec<String> = b.row(i).iter().map(|v| v.to_string()).collect();
            for (w, cell) in widths.iter_mut().zip(&row) {
                *w = (*w).max(cell.len());
            }
            rows.push(row);
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        out.push('+');
        for w in &widths {
            for _ in 0..w + 2 {
                out.push('-');
            }
            out.push('+');
        }
        out.push('\n');
    };
    sep(&mut out);
    out.push('|');
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(out, " {h:<w$} |");
    }
    out.push('\n');
    sep(&mut out);
    for row in &rows {
        out.push('|');
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(out, " {cell:<w$} |");
        }
        out.push('\n');
    }
    sep(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use crate::value::DataType;

    fn schema() -> SchemaRef {
        Arc::new(Schema::new(vec![
            Field::required("id", DataType::Int64),
            Field::nullable("name", DataType::Utf8),
        ]))
    }

    fn batch() -> RecordBatch {
        RecordBatch::from_rows(
            schema(),
            &[
                vec![Value::Int64(1), Value::Utf8("alice".into())],
                vec![Value::Int64(2), Value::Null],
                vec![Value::Int64(3), Value::Utf8("carol".into())],
            ],
        )
        .unwrap()
    }

    #[test]
    fn round_trip_rows() {
        let b = batch();
        assert_eq!(b.num_rows(), 3);
        assert_eq!(b.row(1), vec![Value::Int64(2), Value::Null]);
        assert_eq!(b.to_rows().len(), 3);
    }

    #[test]
    fn schema_mismatch_rejected() {
        let cols = vec![Column::from_values(DataType::Int32, &[Value::Int32(1)]).unwrap()];
        assert!(RecordBatch::try_new(schema(), cols).is_err());
    }

    #[test]
    fn type_mismatch_rejected() {
        let cols = vec![
            Column::from_values(DataType::Int32, &[Value::Int32(1)]).unwrap(),
            Column::from_values(DataType::Utf8, &[Value::Utf8("x".into())]).unwrap(),
        ];
        assert!(RecordBatch::try_new(schema(), cols).is_err());
    }

    #[test]
    fn length_mismatch_rejected() {
        let cols = vec![
            Column::from_values(DataType::Int64, &[Value::Int64(1), Value::Int64(2)]).unwrap(),
            Column::from_values(DataType::Utf8, &[Value::Utf8("x".into())]).unwrap(),
        ];
        assert!(RecordBatch::try_new(schema(), cols).is_err());
    }

    #[test]
    fn project_filter_gather_slice() {
        let b = batch();
        let p = b.project(&[1]).unwrap();
        assert_eq!(p.num_columns(), 1);
        assert_eq!(p.schema().field(0).name, "name");

        let f = b.filter(&[true, false, true]).unwrap();
        assert_eq!(f.num_rows(), 2);
        assert_eq!(f.row(1)[0], Value::Int64(3));

        let g = b.gather(&[2, 2, 0]).unwrap();
        assert_eq!(g.num_rows(), 3);
        assert_eq!(g.row(0)[0], Value::Int64(3));

        let s = b.slice(1, 1).unwrap();
        assert_eq!(s.row(0)[0], Value::Int64(2));
    }

    #[test]
    fn concat_batches() {
        let b = batch();
        let c = RecordBatch::concat(&[b.clone(), b]).unwrap();
        assert_eq!(c.num_rows(), 6);
    }

    #[test]
    fn empty_batch() {
        let b = RecordBatch::empty(schema());
        assert_eq!(b.num_rows(), 0);
        assert_eq!(b.num_columns(), 2);
    }

    #[test]
    fn pretty_format_contains_cells() {
        let s = batch().pretty_format();
        assert!(s.contains("alice"));
        assert!(s.contains("NULL"));
        assert!(s.contains("| id "));
    }
}
