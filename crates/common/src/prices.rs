//! Single source of truth for service-level prices and resource unit costs.
//!
//! The paper sells three service levels at $5 / $1 / $0.5 per TB scanned and
//! provisions CF (cloud-function) capacity at 9-24x the VM unit price. Those
//! numbers used to be duplicated across `pixels-server` (pricing, service
//! levels) and `pixels-turbo` (resource billing); every crate now reads them
//! from here.

/// User-facing price of the Immediate service level, dollars per TB scanned.
pub const IMMEDIATE_PER_TB: f64 = 5.0;

/// Relaxed is sold at 20% of Immediate ($1/TB).
pub const RELAXED_PRICE_FRACTION: f64 = 0.2;

/// Best-of-effort is sold at 10% of Immediate ($0.50/TB).
pub const BESTEFFORT_PRICE_FRACTION: f64 = 0.1;

/// Provider cost of one VM core-hour, dollars (on-demand m-class list price).
pub const VM_CORE_HOUR_DOLLARS: f64 = 0.0425;

/// Provider cost of one GB-second of cloud-function memory, dollars.
pub const CF_GB_SECOND_DOLLARS: f64 = 0.000_016_667;

/// GB of function memory provisioned per vCPU-equivalent of CF compute.
pub const CF_GB_PER_CORE: f64 = 1.769;

/// Flat per-invocation charge for one cloud function, dollars.
pub const CF_INVOCATION_DOLLARS: f64 = 0.000_000_2;

/// Fraction of a dedicated core's throughput one CF vCPU-equivalent delivers.
pub const CF_EFFICIENCY: f64 = 0.5;

/// Provider cost of one GB of exchange spill traffic (PUT + GET bytes of
/// the object-store shuffle between CF stages): request charges plus the
/// storage-seconds of short-lived spill objects, amortized per byte.
pub const EXCHANGE_DOLLARS_PER_GB: f64 = 0.01;

/// The paper's observed band for the effective CF : VM unit-price ratio.
pub const CF_VM_RATIO_MIN: f64 = 9.0;
/// Upper end of the effective CF : VM unit-price band.
pub const CF_VM_RATIO_MAX: f64 = 24.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_prices_match_the_paper() {
        assert_eq!(IMMEDIATE_PER_TB, 5.0);
        let relaxed = IMMEDIATE_PER_TB * RELAXED_PRICE_FRACTION;
        let besteffort = IMMEDIATE_PER_TB * BESTEFFORT_PRICE_FRACTION;
        assert!((relaxed - 1.0).abs() < 1e-12);
        assert!((besteffort - 0.5).abs() < 1e-12);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn ratio_band_is_ordered() {
        assert!(CF_VM_RATIO_MIN < CF_VM_RATIO_MAX);
        assert!(CF_VM_RATIO_MIN > 1.0);
    }
}
