//! Single source of truth for service-level prices and resource unit costs.
//!
//! The paper sells three service levels at $5 / $1 / $0.5 per TB scanned and
//! provisions CF (cloud-function) capacity at 9-24x the VM unit price. Those
//! numbers used to be duplicated across `pixels-server` (pricing, service
//! levels) and `pixels-turbo` (resource billing); every crate now reads them
//! from here.

/// User-facing price of the Immediate service level, dollars per TB scanned.
pub const IMMEDIATE_PER_TB: f64 = 5.0;

/// Relaxed is sold at 20% of Immediate ($1/TB).
pub const RELAXED_PRICE_FRACTION: f64 = 0.2;

/// Best-of-effort is sold at 10% of Immediate ($0.50/TB).
pub const BESTEFFORT_PRICE_FRACTION: f64 = 0.1;

/// Provider cost of one VM core-hour, dollars (on-demand m-class list price).
pub const VM_CORE_HOUR_DOLLARS: f64 = 0.0425;

/// Provider cost of one GB-second of cloud-function memory, dollars.
pub const CF_GB_SECOND_DOLLARS: f64 = 0.000_016_667;

/// GB of function memory provisioned per vCPU-equivalent of CF compute.
pub const CF_GB_PER_CORE: f64 = 1.769;

/// Flat per-invocation charge for one cloud function, dollars.
pub const CF_INVOCATION_DOLLARS: f64 = 0.000_000_2;

/// Fraction of a dedicated core's throughput one CF vCPU-equivalent delivers.
pub const CF_EFFICIENCY: f64 = 0.5;

/// Provider cost of one GB of exchange spill traffic (PUT + GET bytes of
/// the object-store shuffle between CF stages): request charges plus the
/// storage-seconds of short-lived spill objects, amortized per byte.
pub const EXCHANGE_DOLLARS_PER_GB: f64 = 0.01;

/// The paper's observed band for the effective CF : VM unit-price ratio.
pub const CF_VM_RATIO_MIN: f64 = 9.0;
/// Upper end of the effective CF : VM unit-price band.
pub const CF_VM_RATIO_MAX: f64 = 24.0;

/// Reference deadline for the `Deadline` admission mode: a query asking to
/// finish within this target pays the full Immediate price. Looser targets
/// pay proportionally less (down to the best-of-effort floor), tighter
/// targets are capped at the Immediate price — the price curve interpolates
/// the three fixed tiers instead of inventing a fourth price point.
pub const DEADLINE_REF_US: u64 = 60_000_000;

/// Price fraction (of [`IMMEDIATE_PER_TB`]) for a deadline of `target_us`.
///
/// `fraction = clamp(DEADLINE_REF_US / target_us, BESTEFFORT_PRICE_FRACTION, 1.0)`
///
/// Consistent with the fixed tiers: a 60 s deadline prices like Immediate
/// (1.0), a 300 s deadline like Relaxed (0.2), and anything ≥ 600 s like
/// best-of-effort (0.1).
pub fn deadline_price_fraction(target_us: u64) -> f64 {
    if target_us == 0 {
        return 1.0;
    }
    (DEADLINE_REF_US as f64 / target_us as f64).clamp(BESTEFFORT_PRICE_FRACTION, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_prices_match_the_paper() {
        assert_eq!(IMMEDIATE_PER_TB, 5.0);
        let relaxed = IMMEDIATE_PER_TB * RELAXED_PRICE_FRACTION;
        let besteffort = IMMEDIATE_PER_TB * BESTEFFORT_PRICE_FRACTION;
        assert!((relaxed - 1.0).abs() < 1e-12);
        assert!((besteffort - 0.5).abs() < 1e-12);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn ratio_band_is_ordered() {
        assert!(CF_VM_RATIO_MIN < CF_VM_RATIO_MAX);
        assert!(CF_VM_RATIO_MIN > 1.0);
    }

    #[test]
    fn deadline_fraction_interpolates_the_fixed_tiers() {
        // 60 s target pays the Immediate price.
        assert!((deadline_price_fraction(DEADLINE_REF_US) - 1.0).abs() < 1e-12);
        // 300 s target pays the Relaxed fraction.
        assert!((deadline_price_fraction(300_000_000) - RELAXED_PRICE_FRACTION).abs() < 1e-12);
        // Looser than 600 s floors at the best-of-effort fraction.
        assert!((deadline_price_fraction(3_600_000_000) - BESTEFFORT_PRICE_FRACTION).abs() < 1e-12);
        // Tighter than the reference is capped at 1.0 (no premium tier).
        assert!((deadline_price_fraction(1_000_000) - 1.0).abs() < 1e-12);
        assert!((deadline_price_fraction(0) - 1.0).abs() < 1e-12);
    }
}
