//! Relational schemas: named, typed, nullable fields.

use crate::error::{Error, Result};
use crate::value::DataType;
use std::fmt;
use std::sync::Arc;

/// One column of a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    pub name: String,
    pub data_type: DataType,
    pub nullable: bool,
}

impl Field {
    pub fn new(name: impl Into<String>, data_type: DataType, nullable: bool) -> Self {
        Field {
            name: name.into(),
            data_type,
            nullable,
        }
    }

    /// Non-nullable convenience constructor (the common case in TPC-H).
    pub fn required(name: impl Into<String>, data_type: DataType) -> Self {
        Field::new(name, data_type, false)
    }

    /// Nullable convenience constructor.
    pub fn nullable(name: impl Into<String>, data_type: DataType) -> Self {
        Field::new(name, data_type, true)
    }
}

/// An ordered collection of fields. Field names are matched
/// case-insensitively, mirroring SQL identifier semantics.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

/// Shared schema handle; schemas are immutable once constructed.
pub type SchemaRef = Arc<Schema>;

impl Schema {
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    pub fn empty() -> Self {
        Schema { fields: Vec::new() }
    }

    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// Index of the field named `name` (case-insensitive).
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields
            .iter()
            .position(|f| f.name.eq_ignore_ascii_case(name))
    }

    /// Like [`Schema::index_of`] but returns a catalog error on a miss.
    pub fn index_of_or_err(&self, name: &str) -> Result<usize> {
        self.index_of(name)
            .ok_or_else(|| Error::NotFound(format!("column not found: {name}")))
    }

    /// A new schema containing only the fields at `indices`, in order.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema {
            fields: indices.iter().map(|&i| self.fields[i].clone()).collect(),
        }
    }

    /// Concatenate two schemas (used for join outputs).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        fields.extend(other.fields.iter().cloned());
        Schema { fields }
    }

    /// Estimated width in bytes of one row, used by cost models.
    pub fn row_byte_width(&self) -> usize {
        self.fields.iter().map(|f| f.data_type.byte_width()).sum()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", field.name, field.data_type)?;
            if field.nullable {
                write!(f, " NULL")?;
            }
        }
        write!(f, ")")
    }
}

impl FromIterator<Field> for Schema {
    fn from_iter<T: IntoIterator<Item = Field>>(iter: T) -> Self {
        Schema::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Field::required("id", DataType::Int64),
            Field::nullable("name", DataType::Utf8),
            Field::required("price", DataType::Float64),
        ])
    }

    #[test]
    fn index_lookup_is_case_insensitive() {
        let s = sample();
        assert_eq!(s.index_of("ID"), Some(0));
        assert_eq!(s.index_of("Name"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        assert!(s.index_of_or_err("missing").is_err());
    }

    #[test]
    fn projection_keeps_order() {
        let s = sample().project(&[2, 0]);
        assert_eq!(s.field(0).name, "price");
        assert_eq!(s.field(1).name, "id");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn join_concatenates() {
        let s = sample().join(&Schema::new(vec![Field::required("x", DataType::Int32)]));
        assert_eq!(s.len(), 4);
        assert_eq!(s.field(3).name, "x");
    }

    #[test]
    fn row_width_sums_field_widths() {
        assert_eq!(sample().row_byte_width(), 8 + 16 + 8);
    }

    #[test]
    fn display_is_readable() {
        let s = Schema::new(vec![Field::nullable("a", DataType::Int32)]);
        assert_eq!(s.to_string(), "(a INTEGER NULL)");
    }
}
