//! Scalar values and their data types.
//!
//! `DataType` describes the logical type of a column; `Value` is a single
//! (possibly NULL) scalar. Values support the comparison and arithmetic
//! semantics needed by the expression evaluator: NULL propagates through
//! arithmetic, comparisons against NULL yield NULL (represented as `None`
//! at the evaluation layer), and numeric types widen `Int32 -> Int64 ->
//! Float64`.

use crate::error::{Error, Result};
use std::cmp::Ordering;
use std::fmt;

/// Logical data type of a column or expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Boolean,
    Int32,
    Int64,
    Float64,
    /// UTF-8 string.
    Utf8,
    /// Days since the Unix epoch.
    Date,
    /// Milliseconds since the Unix epoch.
    Timestamp,
}

impl DataType {
    /// True for the numeric types that participate in arithmetic.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int32 | DataType::Int64 | DataType::Float64)
    }

    /// The widened type two numeric operands promote to, or `None` when the
    /// pair cannot be combined arithmetically.
    pub fn common_numeric(a: DataType, b: DataType) -> Option<DataType> {
        use DataType::*;
        match (a, b) {
            (Float64, x) | (x, Float64) if x.is_numeric() => Some(Float64),
            (Int64, x) | (x, Int64) if x.is_numeric() => Some(Int64),
            (Int32, Int32) => Some(Int32),
            _ => None,
        }
    }

    /// Whether values of `self` can be compared with values of `other`.
    pub fn comparable_with(self, other: DataType) -> bool {
        if self == other {
            return true;
        }
        self.is_numeric() && other.is_numeric()
    }

    /// Fixed-width size of one value in bytes, used by the storage cost
    /// model. Strings report an estimated average width.
    pub fn byte_width(self) -> usize {
        match self {
            DataType::Boolean => 1,
            DataType::Int32 | DataType::Date => 4,
            DataType::Int64 | DataType::Float64 | DataType::Timestamp => 8,
            DataType::Utf8 => 16,
        }
    }

    /// Parse the SQL type name used in DDL (`INT`, `BIGINT`, `VARCHAR`, ...).
    pub fn parse_sql(name: &str) -> Result<DataType> {
        match name.to_ascii_uppercase().as_str() {
            "BOOL" | "BOOLEAN" => Ok(DataType::Boolean),
            "INT" | "INTEGER" | "INT4" => Ok(DataType::Int32),
            "BIGINT" | "INT8" | "LONG" => Ok(DataType::Int64),
            "DOUBLE" | "FLOAT" | "FLOAT8" | "REAL" | "DECIMAL" | "NUMERIC" => Ok(DataType::Float64),
            "VARCHAR" | "CHAR" | "TEXT" | "STRING" => Ok(DataType::Utf8),
            "DATE" => Ok(DataType::Date),
            "TIMESTAMP" | "DATETIME" => Ok(DataType::Timestamp),
            other => Err(Error::Parse(format!("unknown SQL type: {other}"))),
        }
    }

    /// The canonical SQL spelling of this type.
    pub fn sql_name(self) -> &'static str {
        match self {
            DataType::Boolean => "BOOLEAN",
            DataType::Int32 => "INTEGER",
            DataType::Int64 => "BIGINT",
            DataType::Float64 => "DOUBLE",
            DataType::Utf8 => "VARCHAR",
            DataType::Date => "DATE",
            DataType::Timestamp => "TIMESTAMP",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql_name())
    }
}

/// A single scalar value, possibly NULL.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Boolean(bool),
    Int32(i32),
    Int64(i64),
    Float64(f64),
    Utf8(String),
    /// Days since the Unix epoch.
    Date(i32),
    /// Milliseconds since the Unix epoch.
    Timestamp(i64),
}

impl Value {
    /// The data type of this value, or `None` for NULL (which is typeless).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Boolean(_) => Some(DataType::Boolean),
            Value::Int32(_) => Some(DataType::Int32),
            Value::Int64(_) => Some(DataType::Int64),
            Value::Float64(_) => Some(DataType::Float64),
            Value::Utf8(_) => Some(DataType::Utf8),
            Value::Date(_) => Some(DataType::Date),
            Value::Timestamp(_) => Some(DataType::Timestamp),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view as f64; `None` for NULL and non-numeric values.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int32(v) => Some(*v as f64),
            Value::Int64(v) => Some(*v as f64),
            Value::Float64(v) => Some(*v),
            _ => None,
        }
    }

    /// Integer view as i64; `None` for NULL and non-integer values.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int32(v) => Some(*v as i64),
            Value::Int64(v) => Some(*v),
            Value::Date(v) => Some(*v as i64),
            Value::Timestamp(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Boolean(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Utf8(s) => Some(s),
            _ => None,
        }
    }

    /// Cast this value to `ty`, following SQL CAST semantics. NULL casts to
    /// NULL for every target type.
    pub fn cast_to(&self, ty: DataType) -> Result<Value> {
        if self.is_null() {
            return Ok(Value::Null);
        }
        let err = || {
            Error::Invalid(format!(
                "cannot cast {} to {}",
                self.data_type().map(|t| t.sql_name()).unwrap_or("NULL"),
                ty.sql_name()
            ))
        };
        Ok(match ty {
            DataType::Boolean => match self {
                Value::Boolean(b) => Value::Boolean(*b),
                Value::Utf8(s) => match s.to_ascii_lowercase().as_str() {
                    "true" | "t" | "1" => Value::Boolean(true),
                    "false" | "f" | "0" => Value::Boolean(false),
                    _ => return Err(err()),
                },
                Value::Int32(v) => Value::Boolean(*v != 0),
                Value::Int64(v) => Value::Boolean(*v != 0),
                _ => return Err(err()),
            },
            DataType::Int32 => match self {
                Value::Int32(v) => Value::Int32(*v),
                Value::Int64(v) => Value::Int32(i32::try_from(*v).map_err(|_| err())?),
                Value::Float64(v) => Value::Int32(*v as i32),
                Value::Boolean(b) => Value::Int32(*b as i32),
                Value::Utf8(s) => Value::Int32(s.trim().parse().map_err(|_| err())?),
                Value::Date(d) => Value::Int32(*d),
                _ => return Err(err()),
            },
            DataType::Int64 => match self {
                Value::Int32(v) => Value::Int64(*v as i64),
                Value::Int64(v) => Value::Int64(*v),
                Value::Float64(v) => Value::Int64(*v as i64),
                Value::Boolean(b) => Value::Int64(*b as i64),
                Value::Utf8(s) => Value::Int64(s.trim().parse().map_err(|_| err())?),
                Value::Date(d) => Value::Int64(*d as i64),
                Value::Timestamp(t) => Value::Int64(*t),
                Value::Null => unreachable!("NULL handled above"),
            },
            DataType::Float64 => match self {
                Value::Int32(v) => Value::Float64(*v as f64),
                Value::Int64(v) => Value::Float64(*v as f64),
                Value::Float64(v) => Value::Float64(*v),
                Value::Utf8(s) => Value::Float64(s.trim().parse().map_err(|_| err())?),
                Value::Boolean(b) => Value::Float64(*b as i32 as f64),
                _ => return Err(err()),
            },
            DataType::Utf8 => Value::Utf8(self.to_string()),
            DataType::Date => match self {
                Value::Date(d) => Value::Date(*d),
                Value::Int32(v) => Value::Date(*v),
                Value::Utf8(s) => Value::Date(parse_date(s)?),
                Value::Timestamp(t) => Value::Date((*t / 86_400_000) as i32),
                _ => return Err(err()),
            },
            DataType::Timestamp => match self {
                Value::Timestamp(t) => Value::Timestamp(*t),
                Value::Int64(v) => Value::Timestamp(*v),
                Value::Date(d) => Value::Timestamp(*d as i64 * 86_400_000),
                Value::Utf8(s) => Value::Timestamp(parse_timestamp(s)?),
                _ => return Err(err()),
            },
        })
    }

    /// SQL comparison: NULLs are incomparable (`None`); numeric types compare
    /// after widening; other types compare only against themselves.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Boolean(a), Boolean(b)) => Some(a.cmp(b)),
            (Utf8(a), Utf8(b)) => Some(a.cmp(b)),
            (Date(a), Date(b)) => Some(a.cmp(b)),
            (Timestamp(a), Timestamp(b)) => Some(a.cmp(b)),
            _ => {
                let (a, b) = (self.as_f64()?, other.as_f64()?);
                Some(a.total_cmp(&b))
            }
        }
    }

    /// Total ordering used for sorting: NULLs sort first, then by value.
    /// Cross-type numeric values compare after widening; any other cross-type
    /// pair orders by type tag (stable but arbitrary).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        match (self.is_null(), other.is_null()) {
            (true, true) => return Ordering::Equal,
            (true, false) => return Ordering::Less,
            (false, true) => return Ordering::Greater,
            _ => {}
        }
        if let Some(ord) = self.sql_cmp(other) {
            return ord;
        }
        self.type_tag().cmp(&other.type_tag())
    }

    fn type_tag(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Boolean(_) => 1,
            Value::Int32(_) => 2,
            Value::Int64(_) => 3,
            Value::Float64(_) => 4,
            Value::Utf8(_) => 5,
            Value::Date(_) => 6,
            Value::Timestamp(_) => 7,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            _ => self.sql_cmp(other) == Some(Ordering::Equal),
        }
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Hash must agree with `eq`, which widens numerics: hash every
        // numeric through its f64 bit pattern (integers are exact in f64 up
        // to 2^53; TPC-H-scale keys stay well below that).
        match self {
            Value::Null => state.write_u8(0),
            Value::Boolean(b) => {
                state.write_u8(1);
                state.write_u8(*b as u8);
            }
            Value::Int32(_) | Value::Int64(_) | Value::Float64(_) => {
                state.write_u8(2);
                let f = self.as_f64().unwrap();
                // Normalize -0.0 to 0.0 so equal values hash equally.
                let f = if f == 0.0 { 0.0 } else { f };
                state.write_u64(f.to_bits());
            }
            Value::Utf8(s) => {
                state.write_u8(5);
                state.write(s.as_bytes());
            }
            Value::Date(d) => {
                state.write_u8(6);
                state.write_i32(*d);
            }
            Value::Timestamp(t) => {
                state.write_u8(7);
                state.write_i64(*t);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Boolean(b) => write!(f, "{b}"),
            Value::Int32(v) => write!(f, "{v}"),
            Value::Int64(v) => write!(f, "{v}"),
            Value::Float64(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Utf8(s) => f.write_str(s),
            Value::Date(d) => f.write_str(&format_date(*d)),
            Value::Timestamp(t) => {
                let days = t.div_euclid(86_400_000);
                let ms = t.rem_euclid(86_400_000);
                let (h, m, s) = (ms / 3_600_000, ms % 3_600_000 / 60_000, ms % 60_000 / 1000);
                write!(f, "{} {h:02}:{m:02}:{s:02}", format_date(days as i32))
            }
        }
    }
}

/// Parse `YYYY-MM-DD` into days since the Unix epoch.
pub fn parse_date(s: &str) -> Result<i32> {
    let parts: Vec<&str> = s.trim().splitn(3, '-').collect();
    let err = || Error::Invalid(format!("invalid date literal: {s:?}"));
    if parts.len() != 3 {
        return Err(err());
    }
    let year: i64 = parts[0].parse().map_err(|_| err())?;
    let month: i64 = parts[1].parse().map_err(|_| err())?;
    let day: i64 = parts[2].parse().map_err(|_| err())?;
    if !(1..=12).contains(&month) || !(1..=31).contains(&day) {
        return Err(err());
    }
    Ok(days_from_civil(year, month as u32, day as u32))
}

/// Parse `YYYY-MM-DD[ HH:MM[:SS]]` into milliseconds since the Unix epoch.
pub fn parse_timestamp(s: &str) -> Result<i64> {
    let s = s.trim();
    let (date_part, time_part) = match s.split_once([' ', 'T']) {
        Some((d, t)) => (d, Some(t)),
        None => (s, None),
    };
    let days = parse_date(date_part)? as i64;
    let mut ms = days * 86_400_000;
    if let Some(t) = time_part {
        let err = || Error::Invalid(format!("invalid timestamp literal: {s:?}"));
        let fields: Vec<&str> = t.splitn(3, ':').collect();
        if fields.len() < 2 {
            return Err(err());
        }
        let h: i64 = fields[0].parse().map_err(|_| err())?;
        let m: i64 = fields[1].parse().map_err(|_| err())?;
        let sec: f64 = if fields.len() == 3 {
            fields[2].parse().map_err(|_| err())?
        } else {
            0.0
        };
        if !(0..24).contains(&h) || !(0..60).contains(&m) || !(0.0..60.0).contains(&sec) {
            return Err(err());
        }
        ms += h * 3_600_000 + m * 60_000 + (sec * 1000.0) as i64;
    }
    Ok(ms)
}

/// Days since the Unix epoch for a civil date (Howard Hinnant's algorithm).
fn days_from_civil(y: i64, m: u32, d: u32) -> i32 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = ((m + 9) % 12) as i64;
    let doy = (153 * mp + 2) / 5 + d as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    (era * 146_097 + doe - 719_468) as i32
}

/// Civil date for days since the Unix epoch.
fn civil_from_days(z: i32) -> (i64, u32, u32) {
    let z = z as i64 + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Format days-since-epoch as `YYYY-MM-DD`.
pub fn format_date(days: i32) -> String {
    let (y, m, d) = civil_from_days(days);
    format!("{y:04}-{m:02}-{d:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_widening() {
        assert_eq!(
            DataType::common_numeric(DataType::Int32, DataType::Int64),
            Some(DataType::Int64)
        );
        assert_eq!(
            DataType::common_numeric(DataType::Int64, DataType::Float64),
            Some(DataType::Float64)
        );
        assert_eq!(
            DataType::common_numeric(DataType::Int32, DataType::Int32),
            Some(DataType::Int32)
        );
        assert_eq!(
            DataType::common_numeric(DataType::Utf8, DataType::Int32),
            None
        );
    }

    #[test]
    fn sql_cmp_widens_numerics() {
        assert_eq!(
            Value::Int32(3).sql_cmp(&Value::Float64(3.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int64(4).sql_cmp(&Value::Int32(3)),
            Some(Ordering::Greater)
        );
        assert_eq!(Value::Null.sql_cmp(&Value::Int32(1)), None);
    }

    #[test]
    fn eq_and_hash_agree_across_numeric_types() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let a = Value::Int32(42);
        let b = Value::Int64(42);
        assert_eq!(a, b);
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }

    #[test]
    fn nulls_sort_first_in_total_order() {
        let mut v = [Value::Int32(2), Value::Null, Value::Int32(1)];
        v.sort_by(|a, b| a.total_cmp(b));
        assert!(v[0].is_null());
        assert_eq!(v[1], Value::Int32(1));
    }

    #[test]
    fn date_roundtrip() {
        for s in [
            "1970-01-01",
            "1992-02-29",
            "2026-07-06",
            "1969-12-31",
            "2000-01-01",
        ] {
            let days = parse_date(s).unwrap();
            assert_eq!(format_date(days), s, "roundtrip of {s}");
        }
        assert_eq!(parse_date("1970-01-01").unwrap(), 0);
        assert_eq!(parse_date("1970-01-02").unwrap(), 1);
        assert_eq!(parse_date("1969-12-31").unwrap(), -1);
    }

    #[test]
    fn date_rejects_garbage() {
        assert!(parse_date("not-a-date").is_err());
        assert!(parse_date("1992-13-01").is_err());
        assert!(parse_date("1992-00-10").is_err());
        assert!(parse_date("1992-01-40").is_err());
    }

    #[test]
    fn timestamp_parse() {
        assert_eq!(parse_timestamp("1970-01-01 00:00:01").unwrap(), 1000);
        assert_eq!(parse_timestamp("1970-01-02").unwrap(), 86_400_000);
        assert_eq!(
            parse_timestamp("1970-01-01T01:30").unwrap(),
            3_600_000 + 30 * 60_000
        );
        assert!(parse_timestamp("1970-01-01 25:00:00").is_err());
    }

    #[test]
    fn casts() {
        assert_eq!(
            Value::Utf8("42".into()).cast_to(DataType::Int64).unwrap(),
            Value::Int64(42)
        );
        assert_eq!(
            Value::Int32(1).cast_to(DataType::Boolean).unwrap(),
            Value::Boolean(true)
        );
        assert_eq!(
            Value::Float64(3.9).cast_to(DataType::Int32).unwrap(),
            Value::Int32(3)
        );
        assert!(Value::Utf8("xyz".into()).cast_to(DataType::Int32).is_err());
        assert_eq!(Value::Null.cast_to(DataType::Utf8).unwrap(), Value::Null);
        assert_eq!(
            Value::Utf8("1995-03-15".into())
                .cast_to(DataType::Date)
                .unwrap(),
            Value::Date(parse_date("1995-03-15").unwrap())
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Float64(2.0).to_string(), "2.0");
        assert_eq!(Value::Float64(2.5).to_string(), "2.5");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Date(0).to_string(), "1970-01-01");
        assert_eq!(Value::Timestamp(1000).to_string(), "1970-01-01 00:00:01");
    }

    #[test]
    fn sql_type_parsing() {
        assert_eq!(DataType::parse_sql("varchar").unwrap(), DataType::Utf8);
        assert_eq!(DataType::parse_sql("BIGINT").unwrap(), DataType::Int64);
        assert!(DataType::parse_sql("blob").is_err());
    }
}
