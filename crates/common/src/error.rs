//! Unified error type shared by every PixelsDB crate.
//!
//! Each variant corresponds to one subsystem boundary, so a caller can tell
//! from the error alone which layer rejected the request (parser, planner,
//! executor, storage, ...). All variants carry a human-readable message.

use std::fmt;

/// The error type used across all PixelsDB crates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// SQL lexing/parsing failure.
    Parse(String),
    /// Name resolution, type checking, or plan construction failure.
    Plan(String),
    /// Runtime failure while executing a physical plan.
    Exec(String),
    /// Columnar file format or object-store failure.
    Storage(String),
    /// Metadata (catalog) failure.
    Catalog(String),
    /// A referenced object (table, column, query, file) does not exist.
    NotFound(String),
    /// The request was well-formed but semantically invalid.
    Invalid(String),
    /// Underlying I/O failure.
    Io(String),
    /// Natural-language translation failure.
    Translate(String),
    /// Query-server scheduling / admission failure.
    Schedule(String),
    /// Feature that is recognized but not supported by this build.
    Unsupported(String),
}

impl Error {
    /// Short machine-readable category tag (used in logs and JSON payloads).
    pub fn kind(&self) -> &'static str {
        match self {
            Error::Parse(_) => "parse",
            Error::Plan(_) => "plan",
            Error::Exec(_) => "exec",
            Error::Storage(_) => "storage",
            Error::Catalog(_) => "catalog",
            Error::NotFound(_) => "not_found",
            Error::Invalid(_) => "invalid",
            Error::Io(_) => "io",
            Error::Translate(_) => "translate",
            Error::Schedule(_) => "schedule",
            Error::Unsupported(_) => "unsupported",
        }
    }

    /// The message carried by this error.
    pub fn message(&self) -> &str {
        match self {
            Error::Parse(m)
            | Error::Plan(m)
            | Error::Exec(m)
            | Error::Storage(m)
            | Error::Catalog(m)
            | Error::NotFound(m)
            | Error::Invalid(m)
            | Error::Io(m)
            | Error::Translate(m)
            | Error::Schedule(m)
            | Error::Unsupported(m) => m,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error: {}", self.kind(), self.message())
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

/// Convenience alias used across all PixelsDB crates.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_message() {
        let e = Error::Parse("unexpected token".into());
        assert_eq!(e.to_string(), "parse error: unexpected token");
        assert_eq!(e.kind(), "parse");
        assert_eq!(e.message(), "unexpected token");
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: Error = io.into();
        assert_eq!(e.kind(), "io");
        assert!(e.message().contains("gone"));
    }

    #[test]
    fn all_kinds_are_distinct() {
        let errs = [
            Error::Parse(String::new()),
            Error::Plan(String::new()),
            Error::Exec(String::new()),
            Error::Storage(String::new()),
            Error::Catalog(String::new()),
            Error::NotFound(String::new()),
            Error::Invalid(String::new()),
            Error::Io(String::new()),
            Error::Translate(String::new()),
            Error::Schedule(String::new()),
            Error::Unsupported(String::new()),
        ];
        let mut kinds: Vec<_> = errs.iter().map(|e| e.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), errs.len());
    }
}
