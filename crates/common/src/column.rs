//! Typed columnar vectors with optional validity (null) bitmaps.
//!
//! `Column` is the unit of vectorized execution: a contiguous, homogeneously
//! typed vector plus an optional per-row validity vector. All executor
//! operators and the storage encoders work on columns rather than on
//! individual values.

use crate::error::{Error, Result};
use crate::value::{DataType, Value};

/// The typed payload of a column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    Boolean(Vec<bool>),
    Int32(Vec<i32>),
    Int64(Vec<i64>),
    Float64(Vec<f64>),
    Utf8(Vec<String>),
    /// Days since the Unix epoch.
    Date(Vec<i32>),
    /// Milliseconds since the Unix epoch.
    Timestamp(Vec<i64>),
}

impl ColumnData {
    pub fn data_type(&self) -> DataType {
        match self {
            ColumnData::Boolean(_) => DataType::Boolean,
            ColumnData::Int32(_) => DataType::Int32,
            ColumnData::Int64(_) => DataType::Int64,
            ColumnData::Float64(_) => DataType::Float64,
            ColumnData::Utf8(_) => DataType::Utf8,
            ColumnData::Date(_) => DataType::Date,
            ColumnData::Timestamp(_) => DataType::Timestamp,
        }
    }

    pub fn len(&self) -> usize {
        match self {
            ColumnData::Boolean(v) => v.len(),
            ColumnData::Int32(v) => v.len(),
            ColumnData::Int64(v) => v.len(),
            ColumnData::Float64(v) => v.len(),
            ColumnData::Utf8(v) => v.len(),
            ColumnData::Date(v) => v.len(),
            ColumnData::Timestamp(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// An empty payload of the given type.
    pub fn empty(ty: DataType) -> ColumnData {
        match ty {
            DataType::Boolean => ColumnData::Boolean(Vec::new()),
            DataType::Int32 => ColumnData::Int32(Vec::new()),
            DataType::Int64 => ColumnData::Int64(Vec::new()),
            DataType::Float64 => ColumnData::Float64(Vec::new()),
            DataType::Utf8 => ColumnData::Utf8(Vec::new()),
            DataType::Date => ColumnData::Date(Vec::new()),
            DataType::Timestamp => ColumnData::Timestamp(Vec::new()),
        }
    }
}

/// A typed vector of values with an optional validity vector.
///
/// `validity == None` means every row is valid (non-null); otherwise
/// `validity[i] == false` marks row `i` as NULL. The payload slot of a NULL
/// row holds an unspecified (but type-correct) placeholder.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    data: ColumnData,
    validity: Option<Vec<bool>>,
}

impl Column {
    /// Build a column from a payload with no NULLs.
    pub fn new(data: ColumnData) -> Self {
        Column {
            data,
            validity: None,
        }
    }

    /// Build a column from a payload and validity vector. The validity is
    /// dropped if it marks every row valid.
    pub fn with_validity(data: ColumnData, validity: Option<Vec<bool>>) -> Result<Self> {
        if let Some(v) = &validity {
            if v.len() != data.len() {
                return Err(Error::Invalid(format!(
                    "validity length {} != data length {}",
                    v.len(),
                    data.len()
                )));
            }
            if v.iter().all(|&b| b) {
                return Ok(Column {
                    data,
                    validity: None,
                });
            }
        }
        Ok(Column { data, validity })
    }

    /// Build a column of `ty` from scalar values, checking types row by row.
    pub fn from_values(ty: DataType, values: &[Value]) -> Result<Self> {
        let mut b = ColumnBuilder::new(ty);
        for v in values {
            b.push(v)?;
        }
        Ok(b.finish())
    }

    /// A column of `len` NULLs of the given type.
    pub fn nulls(ty: DataType, len: usize) -> Self {
        let mut b = ColumnBuilder::new(ty);
        for _ in 0..len {
            b.push_null();
        }
        b.finish()
    }

    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    pub fn validity(&self) -> Option<&[bool]> {
        self.validity.as_deref()
    }

    pub fn data_type(&self) -> DataType {
        self.data.data_type()
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn is_null(&self, i: usize) -> bool {
        self.validity.as_ref().is_some_and(|v| !v[i])
    }

    pub fn null_count(&self) -> usize {
        self.validity
            .as_ref()
            .map_or(0, |v| v.iter().filter(|&&b| !b).count())
    }

    /// The scalar at row `i`.
    pub fn value(&self, i: usize) -> Value {
        if self.is_null(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Boolean(v) => Value::Boolean(v[i]),
            ColumnData::Int32(v) => Value::Int32(v[i]),
            ColumnData::Int64(v) => Value::Int64(v[i]),
            ColumnData::Float64(v) => Value::Float64(v[i]),
            ColumnData::Utf8(v) => Value::Utf8(v[i].clone()),
            ColumnData::Date(v) => Value::Date(v[i]),
            ColumnData::Timestamp(v) => Value::Timestamp(v[i]),
        }
    }

    /// Iterate the column as scalars (allocates per string row; intended for
    /// tests and row-oriented sinks, not for hot operator loops).
    pub fn iter_values(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.value(i))
    }

    /// Keep only rows where `mask[i]` is true.
    pub fn filter(&self, mask: &[bool]) -> Result<Column> {
        if mask.len() != self.len() {
            return Err(Error::Invalid(format!(
                "filter mask length {} != column length {}",
                mask.len(),
                self.len()
            )));
        }
        fn keep<T: Clone>(v: &[T], mask: &[bool]) -> Vec<T> {
            v.iter()
                .zip(mask)
                .filter(|&(_, &m)| m)
                .map(|(x, _)| x.clone())
                .collect()
        }
        let data = match &self.data {
            ColumnData::Boolean(v) => ColumnData::Boolean(keep(v, mask)),
            ColumnData::Int32(v) => ColumnData::Int32(keep(v, mask)),
            ColumnData::Int64(v) => ColumnData::Int64(keep(v, mask)),
            ColumnData::Float64(v) => ColumnData::Float64(keep(v, mask)),
            ColumnData::Utf8(v) => ColumnData::Utf8(keep(v, mask)),
            ColumnData::Date(v) => ColumnData::Date(keep(v, mask)),
            ColumnData::Timestamp(v) => ColumnData::Timestamp(keep(v, mask)),
        };
        let validity = self.validity.as_ref().map(|v| keep(v, mask));
        Column::with_validity(data, validity)
    }

    /// Select rows by index, in the given order (indices may repeat).
    pub fn gather(&self, indices: &[usize]) -> Result<Column> {
        let n = self.len();
        if let Some(&bad) = indices.iter().find(|&&i| i >= n) {
            return Err(Error::Invalid(format!(
                "gather index {bad} out of bounds for column of length {n}"
            )));
        }
        fn take<T: Clone>(v: &[T], idx: &[usize]) -> Vec<T> {
            idx.iter().map(|&i| v[i].clone()).collect()
        }
        let data = match &self.data {
            ColumnData::Boolean(v) => ColumnData::Boolean(take(v, indices)),
            ColumnData::Int32(v) => ColumnData::Int32(take(v, indices)),
            ColumnData::Int64(v) => ColumnData::Int64(take(v, indices)),
            ColumnData::Float64(v) => ColumnData::Float64(take(v, indices)),
            ColumnData::Utf8(v) => ColumnData::Utf8(take(v, indices)),
            ColumnData::Date(v) => ColumnData::Date(take(v, indices)),
            ColumnData::Timestamp(v) => ColumnData::Timestamp(take(v, indices)),
        };
        let validity = self.validity.as_ref().map(|v| take(v, indices));
        Column::with_validity(data, validity)
    }

    /// Like [`Column::gather`], but a negative index produces a NULL row.
    /// This is how outer joins null-extend the unmatched side without a
    /// row-at-a-time builder: one gather per column, with `-1` standing in
    /// for "no matching row".
    pub fn gather_or_null(&self, indices: &[i64]) -> Result<Column> {
        let n = self.len();
        if let Some(&bad) = indices.iter().find(|&&i| i >= 0 && i as usize >= n) {
            return Err(Error::Invalid(format!(
                "gather index {bad} out of bounds for column of length {n}"
            )));
        }
        fn take<T: Clone + Default>(v: &[T], idx: &[i64]) -> Vec<T> {
            idx.iter()
                .map(|&i| {
                    if i < 0 {
                        T::default()
                    } else {
                        v[i as usize].clone()
                    }
                })
                .collect()
        }
        let data = match &self.data {
            ColumnData::Boolean(v) => ColumnData::Boolean(take(v, indices)),
            ColumnData::Int32(v) => ColumnData::Int32(take(v, indices)),
            ColumnData::Int64(v) => ColumnData::Int64(take(v, indices)),
            ColumnData::Float64(v) => ColumnData::Float64(take(v, indices)),
            ColumnData::Utf8(v) => ColumnData::Utf8(take(v, indices)),
            ColumnData::Date(v) => ColumnData::Date(take(v, indices)),
            ColumnData::Timestamp(v) => ColumnData::Timestamp(take(v, indices)),
        };
        let validity: Vec<bool> = indices
            .iter()
            .map(|&i| i >= 0 && !self.is_null(i as usize))
            .collect();
        Column::with_validity(data, Some(validity))
    }

    /// Rows `[offset, offset + len)` as a new column.
    pub fn slice(&self, offset: usize, len: usize) -> Result<Column> {
        if offset + len > self.len() {
            return Err(Error::Invalid(format!(
                "slice [{offset}, {}) out of bounds for column of length {}",
                offset + len,
                self.len()
            )));
        }
        let indices: Vec<usize> = (offset..offset + len).collect();
        self.gather(&indices)
    }

    /// Concatenate columns of the same type into one. Payloads are extended
    /// slice-wise into pre-reserved vectors rather than rebuilt value by
    /// value.
    pub fn concat(columns: &[Column]) -> Result<Column> {
        let ty = columns
            .first()
            .ok_or_else(|| Error::Invalid("concat of zero columns".into()))?
            .data_type();
        for c in columns {
            if c.data_type() != ty {
                return Err(Error::Invalid(format!(
                    "concat type mismatch: {} vs {}",
                    ty,
                    c.data_type()
                )));
            }
        }
        let total: usize = columns.iter().map(|c| c.len()).sum();
        macro_rules! splice {
            ($variant:ident) => {{
                let mut out = Vec::with_capacity(total);
                for c in columns {
                    match c.data() {
                        ColumnData::$variant(v) => out.extend_from_slice(v),
                        _ => unreachable!("types checked above"),
                    }
                }
                ColumnData::$variant(out)
            }};
        }
        let data = match ty {
            DataType::Boolean => splice!(Boolean),
            DataType::Int32 => splice!(Int32),
            DataType::Int64 => splice!(Int64),
            DataType::Float64 => splice!(Float64),
            DataType::Utf8 => splice!(Utf8),
            DataType::Date => splice!(Date),
            DataType::Timestamp => splice!(Timestamp),
        };
        let validity = if columns.iter().any(|c| c.validity().is_some()) {
            let mut v = Vec::with_capacity(total);
            for c in columns {
                match c.validity() {
                    Some(bits) => v.extend_from_slice(bits),
                    None => v.resize(v.len() + c.len(), true),
                }
            }
            Some(v)
        } else {
            None
        };
        Column::with_validity(data, validity)
    }

    /// In-memory footprint estimate in bytes (payload only).
    pub fn byte_size(&self) -> usize {
        let payload = match &self.data {
            ColumnData::Boolean(v) => v.len(),
            ColumnData::Int32(v) | ColumnData::Date(v) => v.len() * 4,
            ColumnData::Int64(v) | ColumnData::Timestamp(v) => v.len() * 8,
            ColumnData::Float64(v) => v.len() * 8,
            ColumnData::Utf8(v) => v.iter().map(|s| s.len() + 8).sum(),
        };
        payload + self.validity.as_ref().map_or(0, |v| v.len())
    }
}

/// Incrementally builds a [`Column`] from scalar values.
#[derive(Debug)]
pub struct ColumnBuilder {
    data: ColumnData,
    validity: Vec<bool>,
    has_null: bool,
}

impl ColumnBuilder {
    pub fn new(ty: DataType) -> Self {
        ColumnBuilder {
            data: ColumnData::empty(ty),
            validity: Vec::new(),
            has_null: false,
        }
    }

    /// A builder with payload and validity capacity reserved for `cap`
    /// rows, so hot loops with a known output size never reallocate.
    pub fn with_capacity(ty: DataType, cap: usize) -> Self {
        fn vec<T>(cap: usize) -> Vec<T> {
            Vec::with_capacity(cap)
        }
        let data = match ty {
            DataType::Boolean => ColumnData::Boolean(vec(cap)),
            DataType::Int32 => ColumnData::Int32(vec(cap)),
            DataType::Int64 => ColumnData::Int64(vec(cap)),
            DataType::Float64 => ColumnData::Float64(vec(cap)),
            DataType::Utf8 => ColumnData::Utf8(vec(cap)),
            DataType::Date => ColumnData::Date(vec(cap)),
            DataType::Timestamp => ColumnData::Timestamp(vec(cap)),
        };
        ColumnBuilder {
            data,
            validity: Vec::with_capacity(cap),
            has_null: false,
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn push_null(&mut self) {
        self.has_null = true;
        self.validity.push(false);
        // Push a type-correct placeholder into the payload slot.
        match &mut self.data {
            ColumnData::Boolean(v) => v.push(false),
            ColumnData::Int32(v) => v.push(0),
            ColumnData::Int64(v) => v.push(0),
            ColumnData::Float64(v) => v.push(0.0),
            ColumnData::Utf8(v) => v.push(String::new()),
            ColumnData::Date(v) => v.push(0),
            ColumnData::Timestamp(v) => v.push(0),
        }
    }

    /// Append one scalar; numeric values are widened to the builder's type
    /// when lossless (`Int32` into an `Int64` builder, integers into a
    /// `Float64` builder).
    pub fn push(&mut self, value: &Value) -> Result<()> {
        if value.is_null() {
            self.push_null();
            return Ok(());
        }
        let mismatch = |b: &ColumnBuilder| {
            Error::Invalid(format!(
                "cannot append {:?} to {} column",
                value.data_type(),
                b.data.data_type()
            ))
        };
        match (&mut self.data, value) {
            (ColumnData::Boolean(v), Value::Boolean(x)) => v.push(*x),
            (ColumnData::Int32(v), Value::Int32(x)) => v.push(*x),
            (ColumnData::Int64(v), Value::Int64(x)) => v.push(*x),
            (ColumnData::Int64(v), Value::Int32(x)) => v.push(*x as i64),
            (ColumnData::Float64(v), Value::Float64(x)) => v.push(*x),
            (ColumnData::Float64(v), Value::Int32(x)) => v.push(*x as f64),
            (ColumnData::Float64(v), Value::Int64(x)) => v.push(*x as f64),
            (ColumnData::Utf8(v), Value::Utf8(x)) => v.push(x.clone()),
            (ColumnData::Date(v), Value::Date(x)) => v.push(*x),
            (ColumnData::Timestamp(v), Value::Timestamp(x)) => v.push(*x),
            _ => return Err(mismatch(self)),
        }
        self.validity.push(true);
        Ok(())
    }

    pub fn finish(self) -> Column {
        let validity = if self.has_null {
            Some(self.validity)
        } else {
            None
        };
        Column {
            data: self.data,
            validity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_col(vals: &[Option<i64>]) -> Column {
        let values: Vec<Value> = vals
            .iter()
            .map(|v| v.map_or(Value::Null, Value::Int64))
            .collect();
        Column::from_values(DataType::Int64, &values).unwrap()
    }

    #[test]
    fn build_and_read_back() {
        let c = int_col(&[Some(1), None, Some(3)]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.value(0), Value::Int64(1));
        assert_eq!(c.value(1), Value::Null);
        assert_eq!(c.value(2), Value::Int64(3));
    }

    #[test]
    fn all_valid_drops_validity() {
        let c = int_col(&[Some(1), Some(2)]);
        assert!(c.validity().is_none());
        assert_eq!(c.null_count(), 0);
    }

    #[test]
    fn builder_widens_integers() {
        let mut b = ColumnBuilder::new(DataType::Float64);
        b.push(&Value::Int32(2)).unwrap();
        b.push(&Value::Int64(3)).unwrap();
        b.push(&Value::Float64(4.5)).unwrap();
        let c = b.finish();
        assert_eq!(c.value(0), Value::Float64(2.0));
        assert_eq!(c.value(2), Value::Float64(4.5));
    }

    #[test]
    fn builder_rejects_type_mismatch() {
        let mut b = ColumnBuilder::new(DataType::Int32);
        assert!(b.push(&Value::Utf8("x".into())).is_err());
        assert!(
            b.push(&Value::Int64(1)).is_err(),
            "narrowing is not allowed"
        );
    }

    #[test]
    fn filter_keeps_nulls_aligned() {
        let c = int_col(&[Some(1), None, Some(3), None]);
        let f = c.filter(&[true, true, false, true]).unwrap();
        assert_eq!(f.len(), 3);
        assert_eq!(f.value(0), Value::Int64(1));
        assert_eq!(f.value(1), Value::Null);
        assert_eq!(f.value(2), Value::Null);
    }

    #[test]
    fn filter_length_mismatch_errors() {
        let c = int_col(&[Some(1)]);
        assert!(c.filter(&[true, false]).is_err());
    }

    #[test]
    fn gather_repeats_and_reorders() {
        let c = int_col(&[Some(10), Some(20), None]);
        let g = c.gather(&[2, 0, 0]).unwrap();
        assert_eq!(g.value(0), Value::Null);
        assert_eq!(g.value(1), Value::Int64(10));
        assert_eq!(g.value(2), Value::Int64(10));
        assert!(c.gather(&[3]).is_err());
    }

    #[test]
    fn slice_bounds() {
        let c = int_col(&[Some(1), Some(2), Some(3)]);
        let s = c.slice(1, 2).unwrap();
        assert_eq!(s.value(0), Value::Int64(2));
        assert!(c.slice(2, 2).is_err());
    }

    #[test]
    fn concat_and_type_check() {
        let a = int_col(&[Some(1)]);
        let b = int_col(&[None, Some(2)]);
        let c = Column::concat(&[a, b]).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.null_count(), 1);
        let s = Column::from_values(DataType::Utf8, &[Value::Utf8("x".into())]).unwrap();
        assert!(Column::concat(&[c, s]).is_err());
    }

    #[test]
    fn gather_or_null_extends_with_nulls() {
        let c = int_col(&[Some(10), None, Some(30)]);
        let g = c.gather_or_null(&[-1, 2, 1, 0, -1]).unwrap();
        assert_eq!(g.len(), 5);
        assert_eq!(g.value(0), Value::Null);
        assert_eq!(g.value(1), Value::Int64(30));
        assert_eq!(g.value(2), Value::Null, "source NULL stays NULL");
        assert_eq!(g.value(3), Value::Int64(10));
        assert_eq!(g.value(4), Value::Null);
        assert!(c.gather_or_null(&[3]).is_err());
        assert!(c.gather_or_null(&[-7]).is_ok(), "any negative means NULL");
    }

    #[test]
    fn concat_matches_builder_semantics() {
        // Mixed validity, strings, empties: slice-wise concat must agree
        // with the row-at-a-time construction it replaced.
        let a = Column::from_values(
            DataType::Utf8,
            &[Value::Utf8("x".into()), Value::Null, Value::Utf8("".into())],
        )
        .unwrap();
        let b = Column::from_values(DataType::Utf8, &[]).unwrap();
        let c = Column::from_values(DataType::Utf8, &[Value::Utf8("z".into())]).unwrap();
        let joined = Column::concat(&[a.clone(), b, c]).unwrap();
        assert_eq!(joined.len(), 4);
        assert_eq!(joined.value(1), Value::Null);
        assert_eq!(joined.value(2), Value::Utf8(String::new()));
        assert_eq!(joined.value(3), Value::Utf8("z".into()));
        // All-valid inputs drop the validity vector entirely.
        let v = int_col(&[Some(1)]);
        let joined = Column::concat(&[v.clone(), v]).unwrap();
        assert!(joined.validity().is_none());
    }

    #[test]
    fn with_capacity_builder_roundtrips() {
        let mut b = ColumnBuilder::with_capacity(DataType::Int32, 8);
        b.push(&Value::Int32(3)).unwrap();
        b.push_null();
        let c = b.finish();
        assert_eq!(c.len(), 2);
        assert_eq!(c.value(0), Value::Int32(3));
        assert!(c.is_null(1));
    }

    #[test]
    fn nulls_constructor() {
        let c = Column::nulls(DataType::Utf8, 4);
        assert_eq!(c.len(), 4);
        assert_eq!(c.null_count(), 4);
        assert_eq!(c.data_type(), DataType::Utf8);
    }
}
