//! `pixels-common` — shared substrate for all PixelsDB crates.
//!
//! This crate holds everything more than one subsystem needs: the unified
//! [`error::Error`] type, scalar [`value::Value`]s, relational
//! [`schema::Schema`]s, columnar [`column::Column`]s and
//! [`batch::RecordBatch`]es, typed [`ids`], a dependency-free [`json`] codec
//! (used for the Rover ↔ text-to-SQL message format), and byte/price
//! formatting helpers.

pub mod batch;
pub mod bytesize;
pub mod column;
pub mod error;
pub mod ids;
pub mod json;
pub mod prices;
pub mod schema;
pub mod value;

pub use batch::{pretty_format_batches, RecordBatch};
pub use column::{Column, ColumnBuilder, ColumnData};
pub use error::{Error, Result};
pub use ids::{CfWorkerId, IdGenerator, QueryId, SessionId, TableId, VmWorkerId};
pub use json::Json;
pub use schema::{Field, Schema, SchemaRef};
pub use value::{DataType, Value};
