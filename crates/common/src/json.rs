//! A small, dependency-free JSON codec.
//!
//! PixelsDB exchanges JSON messages between Pixels-Rover and the text-to-SQL
//! service (the paper's CodeS REST API) and uses JSON for query-status
//! payloads. To stay within the project's allowed dependency list this module
//! implements the subset of JSON we need (full parsing, object/array
//! construction, escaping) rather than pulling in `serde_json`.

use crate::error::{Error, Result};
use std::collections::BTreeMap;
use std::fmt;

/// A JSON document. Objects keep keys sorted (BTreeMap), which makes
/// serialized output deterministic — handy for golden tests.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Parse a JSON document from text.
    pub fn parse(input: &str) -> Result<Json> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.parse_value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON document"));
        }
        Ok(v)
    }

    /// Build an object from key/value pairs.
    pub fn object(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Build an array.
    pub fn array(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Array(items.into_iter().collect())
    }

    pub fn string(s: impl Into<String>) -> Json {
        Json::String(s.into())
    }

    pub fn number(n: impl Into<f64>) -> Json {
        Json::Number(n.into())
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// Member lookup that fails with a descriptive error.
    pub fn get_or_err(&self, key: &str) -> Result<&Json> {
        self.get(key)
            .ok_or_else(|| Error::Invalid(format!("missing JSON field: {key}")))
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Number(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Serialize compactly (no extra whitespace).
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) => {
                if n.is_finite() {
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                } else {
                    // JSON has no Inf/NaN; emit null like most encoders.
                    out.push_str("null");
                }
            }
            Json::String(s) => write_escaped(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact_string())
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::Invalid(format!("JSON parse error at byte {}: {msg}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Json> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_lit("null", Json::Null),
            Some(b't') => self.parse_lit("true", Json::Bool(true)),
            Some(b'f') => self.parse_lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn parse_lit(&mut self, lit: &str, value: Json) -> Result<Json> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected literal {lit}")))
        }
    }

    fn parse_number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))?;
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.err(&format!("invalid number {text:?}")))
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let cp = self.parse_hex4()?;
                        // Handle surrogate pairs for non-BMP characters.
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("lone high surrogate"));
                            }
                            let low = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(combined)
                        } else {
                            char::from_u32(cp)
                        };
                        out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: copy the remaining continuation bytes.
                    let width = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid UTF-8 lead byte")),
                    };
                    let start = self.pos - 1;
                    let end = start + width;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated UTF-8 sequence"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8 sequence"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            cp = cp * 16 + d;
        }
        Ok(cp)
    }

    fn parse_array(&mut self) -> Result<Json> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Array(items)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Object(map)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" -12.5e1 ").unwrap(), Json::Number(-125.0));
        assert_eq!(
            Json::parse(r#""hi\nthere""#).unwrap(),
            Json::String("hi\nthere".into())
        );
    }

    #[test]
    fn parse_nested() {
        let j = Json::parse(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(j.get("c").unwrap().as_str(), Some("x"));
        let arr = j.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 3);
        assert!(arr[2].get("b").unwrap().is_null());
    }

    #[test]
    fn roundtrip_compact() {
        let j = Json::object([
            ("question", Json::string("how many orders?")),
            ("limit", Json::number(100.0)),
            ("tables", Json::array([Json::string("orders")])),
        ]);
        let text = j.to_compact_string();
        assert_eq!(Json::parse(&text).unwrap(), j);
        // BTreeMap keys are sorted, so output is deterministic.
        assert_eq!(
            text,
            r#"{"limit":100,"question":"how many orders?","tables":["orders"]}"#
        );
    }

    #[test]
    fn escapes_roundtrip() {
        let j = Json::String("quote \" slash \\ tab \t newline \n unicode é 你好".into());
        let text = j.to_compact_string();
        assert_eq!(Json::parse(&text).unwrap(), j);
    }

    #[test]
    fn unicode_escape_and_surrogates() {
        assert_eq!(Json::parse(r#""Aé""#).unwrap(), Json::String("Aé".into()));
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::String("😀".into()));
        assert!(Json::parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn integer_accessors() {
        let j = Json::parse("42").unwrap();
        assert_eq!(j.as_i64(), Some(42));
        assert_eq!(Json::parse("42.5").unwrap().as_i64(), None);
    }

    #[test]
    fn missing_field_error_names_field() {
        let j = Json::object([("a", Json::Null)]);
        let err = j.get_or_err("question").unwrap_err();
        assert!(err.message().contains("question"));
    }
}
