//! Watch the hybrid engine absorb a workload spike — the paper's core
//! Pixels-Turbo scenario, on the deterministic virtual clock.
//!
//! ```text
//! cargo run --example autoscale_trace
//! ```
//!
//! A quiet cluster receives a sudden burst of immediate queries: cloud
//! functions absorb the overflow within a second while VM workers boot for
//! 90 s, after which the cluster serves everything itself and later scales
//! back in.

use pixelsdb::server::{ServerConfig, ServerSim, ServiceLevel, Submission};
use pixelsdb::sim::{SimDuration, SimTime};
use pixelsdb::turbo::{CfConfig, Placement, ResourcePricing, VmConfig};
use pixelsdb::workload::QueryClass;

fn main() {
    // A 20-minute scenario: idle, spike at t=60 s, sustained tail, quiet.
    let mut subs = Vec::new();
    for i in 0..25 {
        subs.push(Submission {
            at: SimTime::from_secs(60 + i / 8),
            class: QueryClass::Medium,
            level: ServiceLevel::Immediate,
        });
    }
    for i in 0..40 {
        subs.push(Submission {
            at: SimTime::from_secs(120 + i * 10),
            class: QueryClass::Medium,
            level: ServiceLevel::Immediate,
        });
    }
    let sim = ServerSim::new(
        VmConfig::default(),
        CfConfig::default(),
        ResourcePricing::default(),
        ServerConfig {
            tick: SimDuration::from_millis(100),
            ..Default::default()
        },
    );
    let report = sim.run(subs, SimDuration::from_secs(3600));
    assert_eq!(report.unfinished, 0);

    println!("event log (first completions):");
    for r in report.records.iter().take(12) {
        println!(
            "  {}  {:<22} pending {:<8} exec {:<8} cost ${:.6}",
            r.finished_at,
            match r.placement {
                Placement::Vm => "finished in VM".to_string(),
                Placement::Cf { workers } => format!("finished in CF x{workers}"),
            },
            format!("{}", r.pending()),
            format!("{}", r.execution()),
            r.resource_cost.total(),
        );
    }

    let cf_queries = report
        .records
        .iter()
        .filter(|r| matches!(r.placement, Placement::Cf { .. }))
        .count();
    println!("\nsummary:");
    println!("  queries total      : {}", report.records.len());
    println!("  absorbed by CF     : {cf_queries}");
    println!("  scale-out events   : {}", report.scale_out_events);
    println!("  scale-in events    : {}", report.scale_in_events);
    println!(
        "  provider cost      : VM ${:.4} + CF ${:.4}",
        report.total_resource_cost.vm_dollars, report.total_resource_cost.cf_dollars
    );
    assert!(cf_queries > 0, "the spike must overflow into CF");
    assert!(report.scale_out_events > 0, "the cluster must scale out");
    println!("autoscale_trace: done");
}
