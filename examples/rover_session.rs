//! A scripted Pixels-Rover session replaying the paper's §4 demonstration
//! (Figures 2 and 3): browse the schema, ask questions, edit the generated
//! SQL, submit with a service level and result limit, and inspect
//! status/result blocks.
//!
//! ```text
//! cargo run --example rover_session
//! ```

use pixelsdb::rover::{demo_session, run_script};

fn main() {
    let mut session = demo_session(0.002).expect("bootstrap demo");
    let script = [
        // §4: log in through authentication first.
        "login alice wonderland",
        // 4.1 Browse database schema.
        "\\schema",
        // 4.2 Form and submit a query: ask, inspect, edit, submit.
        "ask how many orders per order status",
        "edit 0 SELECT o_orderstatus, COUNT(*) AS orders FROM orders GROUP BY o_orderstatus ORDER BY orders DESC",
        "submit 0 immediate limit 10",
        "wait q-0",
        // A relaxed analytical question over another table.
        "ask average account balance of customers per market segment",
        "submit 1 relaxed",
        "wait q-1",
        // Switch databases (the drop-down of Figure 2) and analyze logs.
        "\\use logs",
        "ask how many requests have status 500",
        "submit 2 best-effort",
        "wait q-2",
        // 4.3 Check query status and result.
        "status",
    ];
    let output = run_script(&mut session, &script);
    println!("{output}");
    assert!(output.contains("finished"), "queries must finish");
    assert!(output.contains("[IMM]") && output.contains("[RLX]") && output.contains("[BST]"));
    println!("rover_session: done");
}
