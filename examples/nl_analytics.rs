//! Natural-language analytics over a web-server log — the paper's "users
//! who lack system or SQL expertise explore data efficiently" scenario.
//!
//! ```text
//! cargo run --example nl_analytics
//! ```
//!
//! Every insight below is obtained purely through English questions; the
//! generated SQL is shown next to each answer.

use pixelsdb::catalog::Catalog;
use pixelsdb::exec::run_query;
use pixelsdb::nl2sql::{CodesService, TextToSqlService};
use pixelsdb::storage::InMemoryObjectStore;
use pixelsdb::workload::{load_weblog, WeblogConfig};

fn main() {
    let catalog = Catalog::shared();
    let store = InMemoryObjectStore::shared();
    load_weblog(
        &catalog,
        store.as_ref(),
        "logs",
        &WeblogConfig {
            rows: 20_000,
            seed: 7,
            row_group_rows: 4096,
        },
    )
    .expect("load web logs");
    let nl = CodesService::new(catalog.clone(), store.clone());

    let questions = [
        "how many requests are there",
        "how many requests have status 500",
        "number of requests per country",
        "average latency per method",
        "total bytes per url",
        "how many distinct countries are there",
        "how many requests have latency greater than 1000",
    ];
    for q in questions {
        let t = nl.translate("logs", q).expect("translate");
        let result = run_query(&catalog, store.clone(), "logs", &t.sql).expect("execute");
        println!("Q: {q}");
        println!("SQL: {}", t.sql);
        let preview = result.slice(0, result.num_rows().min(5)).unwrap();
        println!("{}", preview.pretty_format());
        assert!(result.num_rows() > 0 || q.contains("latency greater"));
    }
    println!("nl_analytics: done");
}
