//! Quickstart: the fastest path through PixelsDB's public API.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Loads the TPC-H demo data into an in-memory object store, asks a
//! natural-language question, runs the translated SQL at two service
//! levels, and prints results with their bills.

use pixelsdb::catalog::Catalog;
use pixelsdb::nl2sql::{CodesService, TextToSqlService};
use pixelsdb::server::{PriceSchedule, QueryServer, QuerySubmission, ServiceLevel};
use pixelsdb::storage::InMemoryObjectStore;
use pixelsdb::turbo::{EngineConfig, TurboEngine};
use pixelsdb::workload::{load_tpch, TpchConfig};
use std::sync::Arc;

fn main() {
    // 1. Stand up the deployment: catalog + object store + demo data.
    let catalog = Catalog::shared();
    let store = InMemoryObjectStore::shared();
    load_tpch(
        &catalog,
        store.as_ref(),
        "tpch",
        &TpchConfig {
            scale: 0.002,
            seed: 42,
            row_group_rows: 4096,
            files_per_table: 1,
        },
    )
    .expect("load demo data");
    println!(
        "Loaded TPC-H subset: {} tables",
        catalog.list_tables("tpch").unwrap().len()
    );

    // 2. The serverless query engine and the query server in front of it.
    let engine = Arc::new(TurboEngine::new(
        catalog.clone(),
        store.clone(),
        EngineConfig::default(),
    ));
    let server = QueryServer::new(engine, PriceSchedule::default());

    // 3. Ask a question in natural language (single-turn translation).
    let nl = CodesService::new(catalog, store);
    let question = "total quantity per return flag";
    let translation = nl.translate("tpch", question).expect("translate");
    println!("\nquestion : {question}");
    println!("SQL      : {}", translation.sql);
    println!("confidence: {:.0}%", translation.confidence * 100.0);

    // 4. Submit at two service levels and compare the bills.
    for level in [ServiceLevel::Immediate, ServiceLevel::BestEffort] {
        let id = server.submit(QuerySubmission {
            database: "tpch".into(),
            sql: translation.sql.clone(),
            level,
            result_limit: None,
            tenant: None,
            deadline_us: None,
        });
        let info = server.wait(id).expect("finishes");
        println!(
            "\n[{}] {} in {:.1} ms, scanned {}, bill {}",
            level,
            info.status.name(),
            info.execution.as_secs_f64() * 1e3,
            pixelsdb::common::bytesize::format_bytes(info.scan_bytes),
            pixelsdb::common::bytesize::format_dollars(info.price),
        );
        if level == ServiceLevel::Immediate {
            println!("{}", info.result.unwrap().pretty_format());
        }
    }
    println!("quickstart: done");
}
