//! The REST surface of PixelsDB (paper §2): the query server and the
//! text-to-SQL service both speak JSON over HTTP. This example boots the
//! whole deployment behind the HTTP facade and drives it with raw HTTP
//! requests, exactly as an external client (or curl) would.
//!
//! ```text
//! cargo run --example rest_api
//! ```

use pixelsdb::catalog::Catalog;
use pixelsdb::common::Json;
use pixelsdb::nl2sql::CodesService;
use pixelsdb::server::{HttpServer, PriceSchedule, QueryServer, TranslateBackend};
use pixelsdb::storage::InMemoryObjectStore;
use pixelsdb::turbo::{EngineConfig, TurboEngine};
use pixelsdb::workload::{load_tpch, TpchConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

/// Adapter plugging the CodeS-style service into the HTTP facade (the
/// text-to-SQL service is pluggable, per the paper).
struct Nl(Arc<CodesService>);

impl TranslateBackend for Nl {
    fn translate_json(&self, request: &str) -> String {
        self.0.handle_json(request)
    }
}

fn http(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> Json {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, payload) = response.split_once("\r\n\r\n").unwrap();
    println!(">> {method} {path} {body}");
    println!("<< {} {payload}\n", head.lines().next().unwrap());
    Json::parse(payload).unwrap()
}

fn main() {
    let catalog = Catalog::shared();
    let store = InMemoryObjectStore::shared();
    load_tpch(
        &catalog,
        store.as_ref(),
        "tpch",
        &TpchConfig {
            scale: 0.001,
            seed: 42,
            row_group_rows: 2048,
            files_per_table: 1,
        },
    )
    .expect("load data");
    let engine = Arc::new(TurboEngine::new(
        catalog.clone(),
        store.clone(),
        EngineConfig::default(),
    ));
    let server = Arc::new(QueryServer::new(engine, PriceSchedule::default()));
    let nl = Arc::new(CodesService::new(catalog, store));
    let srv = HttpServer::start(server, Some(Arc::new(Nl(nl))), 0).expect("bind");
    let addr = srv.addr();
    println!("PixelsDB REST API listening on http://{addr}\n");

    // 1. Health check.
    http(addr, "GET", "/health", "");

    // 2. Translate a question (the Rover -> CodeS round trip).
    let t = http(
        addr,
        "POST",
        "/translate",
        r#"{"question": "how many orders per order status", "database": "tpch"}"#,
    );
    let sql = t.get("sql").unwrap().as_str().unwrap().to_string();

    // 3. Submit the translated SQL at the relaxed level.
    let submitted = http(
        addr,
        "POST",
        "/queries",
        &Json::object([
            ("database", Json::string("tpch")),
            ("sql", Json::string(sql)),
            ("level", Json::string("relaxed")),
            ("result_limit", Json::number(10.0)),
        ])
        .to_compact_string(),
    );
    let id = submitted.get("id").unwrap().as_str().unwrap().to_string();

    // 4. Poll until finished, then show rows + bill.
    let final_state = loop {
        let state = http(addr, "GET", &format!("/queries/{id}"), "");
        match state.get("status").and_then(|s| s.as_str()) {
            Some("finished") | Some("failed") => break state,
            _ => std::thread::sleep(std::time::Duration::from_millis(20)),
        }
    };
    assert_eq!(
        final_state.get("status").unwrap().as_str(),
        Some("finished")
    );
    assert!(final_state.get("rows").is_some());
    srv.shutdown();
    println!("rest_api: done");
}
